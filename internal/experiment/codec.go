package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/koala"
	"repro/internal/workload"
)

// This file gives Config a declarative JSON form so experiments can
// cross a process boundary (the koalad server accepts one per request).
// Two parts of Config cannot be serialized directly — the Grid closure
// and the preset workload constructors — so the wire form replaces them
// with data: a cluster list and a workload preset name or inline spec.
// The same normalization that resolves the wire form also yields a
// canonical fingerprint (Fingerprint) used as the content address of
// cached results: two configs hash equal exactly when they simulate the
// same thing, regardless of JSON key order, cosmetic names or execution
// knobs like Parallelism.

// ClusterSpec is the JSON form of one cluster of the grid.
type ClusterSpec struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
}

// GridSpec is the JSON form of the testbed: an ordered cluster list
// (order matters — placement policies tie-break in declaration order).
type GridSpec struct {
	Clusters []ClusterSpec `json:"clusters"`
}

// WorkloadSpec is the JSON form of the workload: either a paper preset
// by name (Wm, Wmr, W'm, W'mr) or an inline generation spec.
type WorkloadSpec struct {
	// Preset names one of the paper workloads; when set, every other
	// field must be absent.
	Preset string `json:"preset,omitempty"`

	Name              string  `json:"name,omitempty"`
	Jobs              int     `json:"jobs,omitempty"`
	InterArrival      float64 `json:"inter_arrival,omitempty"`
	PoissonArrivals   bool    `json:"poisson_arrivals,omitempty"`
	MalleableFraction float64 `json:"malleable_fraction,omitempty"`
	InitialSize       int     `json:"initial_size,omitempty"`
	RigidSize         int     `json:"rigid_size,omitempty"`
}

// GramSpec is the JSON form of a GRAM latency model override.
type GramSpec struct {
	SubmitLatency     float64 `json:"submit_latency"`
	ReleaseLatency    float64 `json:"release_latency"`
	SubmitConcurrency int     `json:"submit_concurrency"`
}

// BackgroundSpec is the JSON form of the background-load generator.
// The seed is not part of it: each replication derives the background
// seed from its own run seed.
type BackgroundSpec struct {
	MeanInterArrival float64 `json:"mean_inter_arrival"`
	MeanDuration     float64 `json:"mean_duration"`
	MaxNodes         int     `json:"max_nodes"`
}

// ConfigSpec is the declarative JSON form of a Config.
type ConfigSpec struct {
	Name                string          `json:"name,omitempty"`
	Workload            WorkloadSpec    `json:"workload"`
	Policy              string          `json:"policy,omitempty"`
	Approach            string          `json:"approach,omitempty"`
	Placement           string          `json:"placement,omitempty"`
	Runs                int             `json:"runs,omitempty"`
	Parallelism         int             `json:"parallelism,omitempty"`
	Seed                uint64          `json:"seed,omitempty"`
	PollInterval        float64         `json:"poll_interval,omitempty"`
	SamplePeriod        float64         `json:"sample_period,omitempty"`
	GrowthReserve       int             `json:"growth_reserve,omitempty"`
	Horizon             float64         `json:"horizon,omitempty"`
	Grid                *GridSpec       `json:"grid,omitempty"`
	Gram                *GramSpec       `json:"gram,omitempty"`
	Background          *BackgroundSpec `json:"background,omitempty"`
	NoBackground        bool            `json:"no_background,omitempty"`
	DisableMalleability bool            `json:"disable_malleability,omitempty"`
}

// DecodeConfigSpec strictly decodes a ConfigSpec from JSON: unknown
// fields are rejected (they almost always mean a typo in a knob name)
// and so is trailing garbage.
func DecodeConfigSpec(r io.Reader) (*ConfigSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec ConfigSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("experiment: decoding config: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("experiment: trailing data after config object")
	}
	return &spec, nil
}

// resolveWorkload turns the wire workload into a generation spec.
func (w WorkloadSpec) resolve(seed uint64) (workload.Spec, error) {
	if w.Preset != "" {
		if w.Name != "" || w.Jobs != 0 || w.InterArrival != 0 || w.PoissonArrivals ||
			w.MalleableFraction != 0 || w.InitialSize != 0 || w.RigidSize != 0 {
			return workload.Spec{}, fmt.Errorf("experiment: workload preset %q excludes inline spec fields", w.Preset)
		}
		return workload.SpecByName(w.Preset, seed)
	}
	if w.Name == "" {
		return workload.Spec{}, fmt.Errorf("experiment: inline workload needs a name")
	}
	spec := workload.Spec{
		Name:              w.Name,
		Jobs:              w.Jobs,
		InterArrival:      w.InterArrival,
		PoissonArrivals:   w.PoissonArrivals,
		MalleableFraction: w.MalleableFraction,
		InitialSize:       w.InitialSize,
		RigidSize:         w.RigidSize,
		Seed:              seed,
	}
	if err := spec.Validate(); err != nil {
		return workload.Spec{}, err
	}
	return spec, nil
}

// resolveGrid turns the wire grid into the Config.Grid closure. The
// closure builds a fresh Multicluster per call, as Config requires.
func (g *GridSpec) resolve() (func() *cluster.Multicluster, error) {
	if g == nil {
		return nil, nil // withDefaults falls back to DAS-3
	}
	if len(g.Clusters) == 0 {
		return nil, fmt.Errorf("experiment: grid needs at least one cluster")
	}
	seen := make(map[string]bool, len(g.Clusters))
	for _, c := range g.Clusters {
		if c.Name == "" {
			return nil, fmt.Errorf("experiment: grid cluster needs a name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("experiment: duplicate grid cluster %q", c.Name)
		}
		seen[c.Name] = true
		if c.Nodes <= 0 {
			return nil, fmt.Errorf("experiment: grid cluster %q needs a positive node count", c.Name)
		}
	}
	clusters := append([]ClusterSpec(nil), g.Clusters...)
	return func() *cluster.Multicluster {
		cs := make([]*cluster.Cluster, len(clusters))
		for i, c := range clusters {
			cs[i] = cluster.New(c.Name, c.Nodes)
		}
		return cluster.NewMulticluster(cs...)
	}, nil
}

// Config builds the executable Config described by the spec, validating
// every name and parameter up front (the server rejects bad requests
// before admitting a run).
func (s *ConfigSpec) Config() (Config, error) {
	cfg := Config{
		Name:                s.Name,
		Policy:              s.Policy,
		Approach:            s.Approach,
		Placement:           s.Placement,
		Runs:                s.Runs,
		Parallelism:         s.Parallelism,
		Seed:                s.Seed,
		PollInterval:        s.PollInterval,
		SamplePeriod:        s.SamplePeriod,
		GrowthReserve:       s.GrowthReserve,
		Horizon:             s.Horizon,
		NoBackground:        s.NoBackground,
		DisableMalleability: s.DisableMalleability,
	}
	if s.Runs < 0 {
		return Config{}, fmt.Errorf("experiment: negative runs %d", s.Runs)
	}
	if s.PollInterval < 0 || s.SamplePeriod < 0 || s.Horizon < 0 {
		return Config{}, fmt.Errorf("experiment: negative interval in config")
	}
	if s.GrowthReserve < 0 {
		return Config{}, fmt.Errorf("experiment: negative growth reserve %d", s.GrowthReserve)
	}
	wl, err := s.Workload.resolve(s.Seed)
	if err != nil {
		return Config{}, err
	}
	cfg.Workload = wl
	grid, err := s.Grid.resolve()
	if err != nil {
		return Config{}, err
	}
	cfg.Grid = grid
	if s.Gram != nil {
		if s.Gram.SubmitLatency < 0 || s.Gram.ReleaseLatency < 0 || s.Gram.SubmitConcurrency < 0 {
			return Config{}, fmt.Errorf("experiment: negative gram override field")
		}
		cfg.GramOverride = &gram.Config{
			SubmitLatency:     s.Gram.SubmitLatency,
			ReleaseLatency:    s.Gram.ReleaseLatency,
			SubmitConcurrency: s.Gram.SubmitConcurrency,
		}
	}
	if s.Background != nil {
		if s.NoBackground {
			return Config{}, fmt.Errorf("experiment: background spec conflicts with no_background")
		}
		bg := workload.BackgroundSpec{
			MeanInterArrival: s.Background.MeanInterArrival,
			MeanDuration:     s.Background.MeanDuration,
			MaxNodes:         s.Background.MaxNodes,
		}
		if err := bg.Validate(); err != nil {
			return Config{}, err
		}
		cfg.Background = &bg
	}
	// Resolve defaults now so validation failures surface here, not
	// inside a worker goroutine mid-run.
	cfg = cfg.withDefaults()
	if _, ok := core.PolicyByName(cfg.Policy); !ok {
		return Config{}, fmt.Errorf("experiment: unknown policy %q", cfg.Policy)
	}
	if _, ok := core.ApproachByName(cfg.Approach); !ok {
		return Config{}, fmt.Errorf("experiment: unknown approach %q", cfg.Approach)
	}
	if _, err := koala.PolicyByName(cfg.Placement); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// SpecFromConfig renders a config back into its wire form so a
// coordinator can ship it to a worker daemon. The spec is fully
// resolved — defaults applied, presets expanded into an inline
// workload, the grid evaluated into a cluster list — so round-tripping
// it through ConfigSpec.Config() on the worker yields a config with
// the same Fingerprint (and therefore the same simulated results).
// Parallelism is deliberately dropped: it does not change results, and
// each worker picks its own.
func SpecFromConfig(cfg Config) (ConfigSpec, error) {
	cfg = cfg.withDefaults()
	spec := ConfigSpec{
		Name: cfg.Name,
		Workload: WorkloadSpec{
			Name:              cfg.Workload.Name,
			Jobs:              cfg.Workload.Jobs,
			InterArrival:      cfg.Workload.InterArrival,
			PoissonArrivals:   cfg.Workload.PoissonArrivals,
			MalleableFraction: cfg.Workload.MalleableFraction,
			InitialSize:       cfg.Workload.InitialSize,
			RigidSize:         cfg.Workload.RigidSize,
		},
		Policy:              cfg.Policy,
		Approach:            cfg.Approach,
		Placement:           cfg.Placement,
		Runs:                cfg.Runs,
		Seed:                cfg.Seed,
		PollInterval:        cfg.PollInterval,
		SamplePeriod:        cfg.SamplePeriod,
		GrowthReserve:       cfg.GrowthReserve,
		Horizon:             cfg.Horizon,
		DisableMalleability: cfg.DisableMalleability,
	}
	grid := cfg.Grid()
	if grid == nil {
		return ConfigSpec{}, fmt.Errorf("experiment: config grid returned nil")
	}
	gs := &GridSpec{}
	for _, c := range grid.Clusters() {
		gs.Clusters = append(gs.Clusters, ClusterSpec{Name: c.Name(), Nodes: c.Nodes()})
	}
	spec.Grid = gs
	if cfg.GramOverride != nil {
		spec.Gram = &GramSpec{
			SubmitLatency:     cfg.GramOverride.SubmitLatency,
			ReleaseLatency:    cfg.GramOverride.ReleaseLatency,
			SubmitConcurrency: cfg.GramOverride.SubmitConcurrency,
		}
	}
	// Post-defaults, a nil Background means "none" (withDefaults would
	// otherwise have filled in DefaultBackground) — say so explicitly,
	// or the worker's own defaulting would re-add it and change the
	// fingerprint.
	if cfg.Background != nil {
		spec.Background = &BackgroundSpec{
			MeanInterArrival: cfg.Background.MeanInterArrival,
			MeanDuration:     cfg.Background.MeanDuration,
			MaxNodes:         cfg.Background.MaxNodes,
		}
	} else {
		spec.NoBackground = true
	}
	return spec, nil
}

// canonicalConfig is the hashed form: only fields that change the
// simulation's outcome, fully resolved (defaults applied, presets
// expanded, grid evaluated), in a fixed field order. Name and
// Parallelism are deliberately absent — one is cosmetic, the other
// provably does not change results.
type canonicalConfig struct {
	Workload            canonicalWorkload `json:"workload"`
	Policy              string            `json:"policy"`
	Approach            string            `json:"approach"`
	Placement           string            `json:"placement"`
	Runs                int               `json:"runs"`
	Seed                uint64            `json:"seed"`
	PollInterval        float64           `json:"poll_interval"`
	SamplePeriod        float64           `json:"sample_period"`
	GrowthReserve       int               `json:"growth_reserve"`
	Horizon             float64           `json:"horizon"`
	Grid                []ClusterSpec     `json:"grid"`
	Gram                *GramSpec         `json:"gram,omitempty"`
	Background          *BackgroundSpec   `json:"background,omitempty"`
	DisableMalleability bool              `json:"disable_malleability"`
}

// canonicalWorkload is the resolved workload (presets expanded; the
// name stays — it prefixes job IDs, so it is not cosmetic).
type canonicalWorkload struct {
	Name              string  `json:"name"`
	Jobs              int     `json:"jobs"`
	InterArrival      float64 `json:"inter_arrival"`
	PoissonArrivals   bool    `json:"poisson_arrivals"`
	MalleableFraction float64 `json:"malleable_fraction"`
	InitialSize       int     `json:"initial_size"`
	RigidSize         int     `json:"rigid_size"`
}

// Fingerprint returns the canonical content hash of the experiment the
// config describes: a hex SHA-256 over the resolved semantic fields.
// Configs with equal fingerprints produce identical results (the
// simulation is deterministic in these fields), so the fingerprint is
// the key of koalad's content-addressed result cache.
func Fingerprint(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	canon := canonicalConfig{
		Workload: canonicalWorkload{
			Name:              cfg.Workload.Name,
			Jobs:              cfg.Workload.Jobs,
			InterArrival:      cfg.Workload.InterArrival,
			PoissonArrivals:   cfg.Workload.PoissonArrivals,
			MalleableFraction: cfg.Workload.MalleableFraction,
			InitialSize:       cfg.Workload.InitialSize,
			RigidSize:         cfg.Workload.RigidSize,
		},
		Policy:              cfg.Policy,
		Approach:            cfg.Approach,
		Placement:           cfg.Placement,
		Runs:                cfg.Runs,
		Seed:                cfg.Seed,
		PollInterval:        cfg.PollInterval,
		SamplePeriod:        cfg.SamplePeriod,
		GrowthReserve:       cfg.GrowthReserve,
		Horizon:             cfg.Horizon,
		DisableMalleability: cfg.DisableMalleability,
	}
	grid := cfg.Grid()
	if grid == nil {
		return "", fmt.Errorf("experiment: config grid returned nil")
	}
	for _, c := range grid.Clusters() {
		canon.Grid = append(canon.Grid, ClusterSpec{Name: c.Name(), Nodes: c.Nodes()})
	}
	if cfg.GramOverride != nil {
		canon.Gram = &GramSpec{
			SubmitLatency:     cfg.GramOverride.SubmitLatency,
			ReleaseLatency:    cfg.GramOverride.ReleaseLatency,
			SubmitConcurrency: cfg.GramOverride.SubmitConcurrency,
		}
	}
	if cfg.Background != nil {
		canon.Background = &BackgroundSpec{
			MeanInterArrival: cfg.Background.MeanInterArrival,
			MeanDuration:     cfg.Background.MeanDuration,
			MaxNodes:         cfg.Background.MaxNodes,
		}
	}
	// encoding/json emits struct fields in declaration order, so the
	// bytes are canonical without any key sorting.
	b, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("experiment: fingerprinting config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
