package experiment

import (
	"strings"
	"testing"
)

// TestFingerprintGoldenVectors pins Fingerprint to exact SHA-256
// strings for a spread of fixed ConfigSpecs. The fingerprint is the
// content address of koalad's result cache AND of its on-disk result
// store — if it drifts across a refactor, every persisted result
// silently becomes unreachable (a mass cache invalidation at best, a
// wrong-result serve at worst). Unlike the canonicalization tests,
// which only check equivalences, these vectors fail on ANY change to
// the hashed form: field order, default resolution, preset expansion,
// float formatting.
//
// If this test fails, you changed the canonical config encoding. That
// is sometimes intentional (a new semantic field MUST change the
// hash); when it is, update the vectors and call the incompatibility
// out in the commit — existing -data-dir contents will re-simulate.
func TestFingerprintGoldenVectors(t *testing.T) {
	vectors := []struct {
		name string
		spec string
		want string
	}{
		{
			name: "preset defaults",
			spec: `{"workload":{"preset":"Wm"}}`,
			want: "40c5ffd9f1425bcfa3a8a5196544e61d5db86f6b0861f059403826e5aa4c6867",
		},
		{
			name: "preset with policy knobs",
			spec: `{"workload":{"preset":"Wmr"},"policy":"EGS","approach":"PWA","placement":"CF","runs":5,"seed":42}`,
			want: "b5913c20b520f9d486598abb411cb0024428f7949de779c5df97e0204d968781",
		},
		{
			name: "inline workload and grid",
			spec: `{"workload":{"name":"tiny","jobs":4,"inter_arrival":30,"malleable_fraction":1,"initial_size":2,"rigid_size":2},"grid":{"clusters":[{"name":"A","nodes":48},{"name":"B","nodes":32}]},"no_background":true,"runs":2,"seed":1}`,
			want: "7a71bc943aa53b847c93aca86bdba35299a025ea9dc2d404cf07ec6f592e512e",
		},
		{
			name: "gram override, background, intervals",
			spec: `{"workload":{"preset":"W'm"},"gram":{"submit_latency":5,"release_latency":1,"submit_concurrency":2},"background":{"mean_inter_arrival":60,"mean_duration":600,"max_nodes":16},"horizon":100000,"poll_interval":30,"sample_period":60,"growth_reserve":4,"disable_malleability":true}`,
			want: "272f0f01f26100bea1c070ee6dd8b4b0c31928e688e8249d5b084a1e99d0d16c",
		},
	}
	for _, v := range vectors {
		t.Run(v.name, func(t *testing.T) {
			spec, err := DecodeConfigSpec(strings.NewReader(v.spec))
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := spec.Config()
			if err != nil {
				t.Fatal(err)
			}
			got, err := Fingerprint(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != v.want {
				t.Errorf("fingerprint drifted:\n got  %s\n want %s\nevery on-disk cache entry keyed by the old form is now unreachable — see the test comment before updating the vector", got, v.want)
			}
		})
	}
}
