package experiment

import (
	"strings"
	"testing"
)

func decodeSpec(t *testing.T, js string) *ConfigSpec {
	t.Helper()
	spec, err := DecodeConfigSpec(strings.NewReader(js))
	if err != nil {
		t.Fatalf("DecodeConfigSpec(%s): %v", js, err)
	}
	return spec
}

func TestDecodeConfigSpecRejectsUnknownFields(t *testing.T) {
	_, err := DecodeConfigSpec(strings.NewReader(`{"workload":{"preset":"Wm"},"polcy":"EGS"}`))
	if err == nil {
		t.Fatal("misspelled field accepted")
	}
	_, err = DecodeConfigSpec(strings.NewReader(`{"workload":{"preset":"Wm"}} trailing`))
	if err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestConfigSpecPresetWorkload(t *testing.T) {
	spec := decodeSpec(t, `{"workload":{"preset":"Wmr"},"policy":"EGS","runs":2,"seed":9}`)
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload.Name != "Wmr" || cfg.Workload.Jobs != 300 || cfg.Workload.MalleableFraction != 0.5 {
		t.Fatalf("preset did not resolve: %+v", cfg.Workload)
	}
	if cfg.Policy != "EGS" || cfg.Runs != 2 || cfg.Seed != 9 {
		t.Fatalf("fields not carried: %+v", cfg)
	}
	// Defaults resolved by Config().
	if cfg.Approach != "PRA" || cfg.Placement != "WF" || cfg.Background == nil {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Grid == nil || cfg.Grid().TotalNodes() != 272 {
		t.Fatal("default grid is not DAS-3")
	}
}

func TestConfigSpecInlineWorkloadAndGrid(t *testing.T) {
	spec := decodeSpec(t, `{
		"workload": {"name":"tiny","jobs":4,"inter_arrival":30,"malleable_fraction":1,"initial_size":2,"rigid_size":2},
		"grid": {"clusters":[{"name":"A","nodes":48},{"name":"B","nodes":32}]},
		"no_background": true
	}`)
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload.Jobs != 4 || cfg.Workload.InterArrival != 30 {
		t.Fatalf("inline workload not carried: %+v", cfg.Workload)
	}
	g := cfg.Grid()
	if g.TotalNodes() != 80 || g.Clusters()[0].Name() != "A" {
		t.Fatalf("grid not built: %v", g)
	}
	if g == cfg.Grid() {
		t.Fatal("Grid closure must build a fresh Multicluster per call")
	}
	if cfg.Background != nil {
		t.Fatal("no_background did not disable background load")
	}
	// The built config is directly runnable.
	res, err := RunOnce(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("records = %d, want 4", len(res.Records))
	}
}

func TestConfigSpecValidation(t *testing.T) {
	bad := []string{
		`{"workload":{"preset":"NOPE"}}`,
		`{"workload":{"preset":"Wm","jobs":10}}`,
		`{"workload":{"name":"x","jobs":0,"inter_arrival":30,"initial_size":2,"rigid_size":2}}`,
		`{"workload":{"jobs":10,"inter_arrival":30,"initial_size":2,"rigid_size":2}}`,
		`{"workload":{"preset":"Wm"},"policy":"NOPE"}`,
		`{"workload":{"preset":"Wm"},"approach":"NOPE"}`,
		`{"workload":{"preset":"Wm"},"placement":"NOPE"}`,
		`{"workload":{"preset":"Wm"},"grid":{"clusters":[]}}`,
		`{"workload":{"preset":"Wm"},"grid":{"clusters":[{"name":"A","nodes":0}]}}`,
		`{"workload":{"preset":"Wm"},"grid":{"clusters":[{"name":"A","nodes":4},{"name":"A","nodes":4}]}}`,
		`{"workload":{"preset":"Wm"},"runs":-1}`,
		`{"workload":{"preset":"Wm"},"background":{"mean_inter_arrival":0,"mean_duration":10,"max_nodes":4}}`,
		`{"workload":{"preset":"Wm"},"no_background":true,"background":{"mean_inter_arrival":10,"mean_duration":10,"max_nodes":4}}`,
	}
	for _, js := range bad {
		spec, err := DecodeConfigSpec(strings.NewReader(js))
		if err != nil {
			continue // rejected at decode time is fine too
		}
		if _, err := spec.Config(); err == nil {
			t.Errorf("invalid spec accepted: %s", js)
		}
	}
}

func TestFingerprintCanonicalization(t *testing.T) {
	// Key order, cosmetic name and parallelism must not change the hash.
	a := decodeSpec(t, `{"workload":{"preset":"Wm"},"policy":"FPSMA","seed":3}`)
	b := decodeSpec(t, `{"seed":3,"policy":"FPSMA","workload":{"preset":"Wm"},"name":"pretty","parallelism":7}`)
	ca, err := a.Config()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Config()
	if err != nil {
		t.Fatal(err)
	}
	ha, err := Fingerprint(ca)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := Fingerprint(cb)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("equivalent configs hash differently: %s vs %s", ha, hb)
	}
	if len(ha) != 64 {
		t.Errorf("hash %q is not hex sha256", ha)
	}

	// A preset and its spelled-out spec are the same experiment.
	inline := decodeSpec(t, `{"workload":{"name":"Wm","jobs":300,"inter_arrival":120,"malleable_fraction":1,"initial_size":2,"rigid_size":2},"policy":"FPSMA","seed":3}`)
	ci, err := inline.Config()
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Fingerprint(ci)
	if err != nil {
		t.Fatal(err)
	}
	if hi != ha {
		t.Errorf("preset and inline equivalent hash differently: %s vs %s", hi, ha)
	}
}

func TestFingerprintSeparatesSemanticChanges(t *testing.T) {
	base := `{"workload":{"preset":"Wm"},"seed":3}`
	variants := []string{
		`{"workload":{"preset":"Wm"},"seed":4}`,
		`{"workload":{"preset":"Wmr"},"seed":3}`,
		`{"workload":{"preset":"Wm"},"seed":3,"policy":"EGS"}`,
		`{"workload":{"preset":"Wm"},"seed":3,"approach":"PWA"}`,
		`{"workload":{"preset":"Wm"},"seed":3,"runs":8}`,
		`{"workload":{"preset":"Wm"},"seed":3,"no_background":true}`,
		`{"workload":{"preset":"Wm"},"seed":3,"disable_malleability":true}`,
		`{"workload":{"preset":"Wm"},"seed":3,"grid":{"clusters":[{"name":"A","nodes":48}]}}`,
		`{"workload":{"preset":"Wm"},"seed":3,"gram":{"submit_latency":9,"release_latency":1,"submit_concurrency":2}}`,
	}
	cfg, err := decodeSpec(t, base).Config()
	if err != nil {
		t.Fatal(err)
	}
	h0, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range variants {
		vcfg, err := decodeSpec(t, js).Config()
		if err != nil {
			t.Fatalf("%s: %v", js, err)
		}
		h, err := Fingerprint(vcfg)
		if err != nil {
			t.Fatal(err)
		}
		if h == h0 {
			t.Errorf("semantic change not reflected in hash: %s", js)
		}
	}
}

func TestFingerprintOfCodeBuiltConfig(t *testing.T) {
	// Fingerprint also works for configs assembled in Go (the batch
	// path), evaluating the Grid closure to canonical cluster specs.
	cfg := Config{Workload: smallWorkload("w", 4, 30, 1)(3), Grid: smallGrid, Seed: 3, Runs: 1}
	h1, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("fingerprint is not stable across calls")
	}
}
