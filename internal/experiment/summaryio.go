package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// This file is the stable serialization of StreamSummary — the form in
// which completed results cross process lifetimes (koalad's on-disk
// result store) rather than just process boundaries. Two guarantees
// matter there that plain json.Marshal/Unmarshal do not spell out:
//
//  1. Encoding is canonical: fields marshal in declaration order with
//     Go's shortest-round-trip float formatting, so
//     Encode(Decode(Encode(s))) is byte-identical to Encode(s). A
//     result written before a restart re-serves byte-identically after.
//  2. Decoding is strict: unknown fields are rejected. If StreamSummary
//     ever renames or drops a field, old on-disk entries fail to decode
//     and degrade to a cache miss (the config re-simulates) instead of
//     silently serving a summary with zeroed fields.

// EncodeSummary renders a summary in its canonical stored form.
func EncodeSummary(s StreamSummary) ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("experiment: encoding summary: %w", err)
	}
	return b, nil
}

// DecodeSummary strictly parses a stored summary. An error means the
// bytes were written by an incompatible version (or corrupted) and the
// caller must treat the entry as absent.
func DecodeSummary(b []byte) (StreamSummary, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s StreamSummary
	if err := dec.Decode(&s); err != nil {
		return StreamSummary{}, fmt.Errorf("experiment: decoding summary: %w", err)
	}
	if dec.More() {
		return StreamSummary{}, fmt.Errorf("experiment: trailing data after summary")
	}
	return s, nil
}
