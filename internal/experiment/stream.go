package experiment

import (
	"context"
	"fmt"
	"runtime/debug"

	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// This file is the streaming twin of Run/RunContext: the same seeded
// replications on the same worker pool, but each replication's job
// records are folded into a constant-memory metrics.Aggregate and
// dropped before the next replication of that worker starts. Nothing
// proportional to the job count survives a replication, which is what
// lets koalad hold many concurrent sweeps, and what the -stream flag
// of the batch CLIs exposes for very large runs. Aggregates are merged
// in replication order, so the output is deterministic for a given
// config and seed regardless of parallelism.

// Replication is the compact summary of one completed replication —
// what koalad streams as a progress event, and all that RunStream
// retains per replication.
type Replication struct {
	// Rep is the replication index in [0, Runs); its seed is
	// Config.Seed + Rep.
	Rep  int    `json:"rep"`
	Seed uint64 `json:"seed"`

	Jobs      int     `json:"jobs"`
	Malleable int     `json:"malleable"`
	Rejected  int     `json:"rejected"`
	Makespan  float64 `json:"makespan"`
	// MeanUtilization is the time-averaged processor utilisation over
	// the replication's active span.
	MeanUtilization float64 `json:"mean_utilization"`
	// Ops is the total number of malleability operations.
	Ops float64 `json:"ops"`

	MeanExecution float64 `json:"mean_execution"`
	MeanResponse  float64 `json:"mean_response"`
}

// StreamResult pools the replications of one experiment point without
// retaining per-job records: exact counts and moments plus
// sketch-backed quantiles (see metrics.Aggregate).
type StreamResult struct {
	Config       Config
	Replications []Replication
	// Agg holds the merged aggregate for points executed in this
	// process. It is nil for results received from a remote backend —
	// only the wire summary crosses the process boundary — in which
	// case the accessors read the precomputed summary instead.
	Agg *metrics.Aggregate

	// summary, when non-nil, is the precomputed wire summary of a
	// remotely executed point (see StreamResultFromSummary).
	summary *StreamSummary
}

// StreamResultFromSummary rebuilds a StreamResult from its wire
// summary — how a remote backend's result re-enters the driver layer.
// Summary() returns sum unchanged, so EncodeSummary over the rebuilt
// result is byte-identical to the bytes the worker produced.
func StreamResultFromSummary(cfg Config, sum StreamSummary) *StreamResult {
	return &StreamResult{
		Config:       cfg,
		Replications: append([]Replication(nil), sum.Replications...),
		summary:      &sum,
	}
}

// summarizeReplication reduces a full RunResult to its compact form
// plus the per-field aggregate, after which the records are garbage.
func summarizeReplication(i int, r *RunResult) (Replication, *metrics.Aggregate) {
	agg := metrics.NewAggregate()
	agg.ObserveAll(r.Records)
	rep := Replication{
		Rep:           i,
		Seed:          r.Seed,
		Jobs:          agg.Jobs,
		Malleable:     agg.Malleable,
		Rejected:      r.Rejected,
		Makespan:      r.Makespan,
		Ops:           r.TotalOps,
		MeanExecution: agg.MeanExecution(),
		MeanResponse:  agg.MeanResponse(),
	}
	if r.Makespan > 0 {
		rep.MeanUtilization = r.Utilization.MeanOver(0, r.Makespan)
	}
	return rep, agg
}

// StreamHooks observe a streaming run's replications. Both hooks are
// optional and are invoked from worker goroutines — possibly
// concurrently — so implementations must synchronize their own state
// (koalad's event log and gauges do).
type StreamHooks struct {
	// OnStart fires when a replication's simulation begins.
	OnStart func(rep int, seed uint64)
	// OnDone fires once per completed replication, in completion order.
	OnDone func(Replication)
}

// RunStream executes cfg.Runs seeded replications like Run, but streams
// each replication through an aggregate instead of pooling records.
func RunStream(cfg Config) (*StreamResult, error) {
	return RunStreamContext(context.Background(), cfg, StreamHooks{})
}

// PointRunner executes one experiment point — a config's full set of
// seeded replications — and returns its streaming result. It is the
// seam between the experiment drivers (RunStream*, RunSetStream*) and
// the execution substrate: internal/backend implements it in-process
// (backend.Local, the bounded pool below) and over HTTP to worker
// daemons (backend.Remote). Every implementation must be
// deterministic: the result's Summary() encoding depends only on the
// config, never on which substrate ran it.
type PointRunner interface {
	RunPoint(ctx context.Context, cfg Config, hooks StreamHooks) (*StreamResult, error)
}

// localPoint is the in-process PointRunner: the PR-1 bounded worker
// pool over the point's independent seeded replications, merged in
// replication order (deterministic for any parallelism).
type localPoint struct {
	// lim, when non-nil, replaces the per-point cfg.Parallelism pool
	// with a shared budget: concurrent RunPoint calls draw replication
	// slots from the same limiter, so a whole sweep is bounded
	// globally no matter how its points interleave.
	lim parallel.Limiter
}

func (p localPoint) RunPoint(ctx context.Context, cfg Config, hooks StreamHooks) (*StreamResult, error) {
	// One Prepare per point: the replications share the immutable setup
	// (resolved lookups, prepared workload spec, site index) and differ
	// only in their seeds.
	prep, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	cfg = prep.Config()
	reps := make([]Replication, cfg.Runs)
	aggs := make([]*metrics.Aggregate, cfg.Runs)
	body := func(_ context.Context, i int) error {
		rep, agg, err := streamOne(prep, i, hooks)
		if err != nil {
			return err
		}
		reps[i], aggs[i] = rep, agg
		return nil
	}
	if p.lim != nil {
		err = parallel.ForEachShared(ctx, cfg.Runs, p.lim, body)
	} else {
		err = parallel.ForEach(ctx, cfg.Runs, cfg.Parallelism, body)
	}
	if err != nil {
		return nil, err
	}
	return newStreamResult(cfg, reps, aggs), nil
}

// streamOne executes replication i against the point's prepared setup
// and reduces it to its compact form. A panicking replication must not
// unwind the worker goroutine: the streaming path serves long-running
// daemons (koalad), where one bad run may fail but never take the
// process down.
func streamOne(prep *Prepared, i int, hooks StreamHooks) (rep Replication, agg *metrics.Aggregate, err error) {
	cfg := prep.Config()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiment %s: replication %d panicked: %v\n%s", cfg.Name, i, p, debug.Stack())
		}
	}()
	seed := cfg.Seed + uint64(i)
	if hooks.OnStart != nil {
		hooks.OnStart(i, seed)
	}
	r, err := prep.RunOnce(seed)
	if err != nil {
		return Replication{}, nil, err
	}
	rep, agg = summarizeReplication(i, r)
	if hooks.OnDone != nil {
		hooks.OnDone(rep)
	}
	return rep, agg, nil
}

// newStreamResult merges per-replication aggregates in replication
// order into a StreamResult (deterministic for any parallelism).
func newStreamResult(cfg Config, reps []Replication, aggs []*metrics.Aggregate) *StreamResult {
	out := &StreamResult{Config: cfg, Replications: reps, Agg: metrics.NewAggregate()}
	for _, agg := range aggs {
		out.Agg.Merge(agg)
	}
	return out
}

// RunStreamContext is RunStream with cancellation and progress hooks —
// a thin driver over the in-process point runner. The returned result
// merges the replication aggregates in replication order, so it is
// identical for any parallelism.
func RunStreamContext(ctx context.Context, cfg Config, hooks StreamHooks) (*StreamResult, error) {
	return localPoint{}.RunPoint(ctx, cfg, hooks)
}

// RunSetStreamVia runs every combo point of an approach through
// runner, returning one StreamResult per combo in combo order. All
// points are in flight at once — bounding actual concurrency is the
// runner's job (backend.Local shares one replication budget across
// points; backend.Remote shards whole points across worker daemons).
func RunSetStreamVia(ctx context.Context, runner PointRunner, approach string, combos []Combo, base Config) ([]*StreamResult, error) {
	cfgs := ComboConfigs(approach, combos, base)
	out := make([]*StreamResult, len(cfgs))
	err := parallel.ForEach(ctx, len(cfgs), len(cfgs), func(ctx context.Context, c int) error {
		res, err := runner.RunPoint(ctx, cfgs[c], StreamHooks{})
		if err != nil {
			return err
		}
		out[c] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunSetStream is the streaming counterpart of RunSet: every (combo,
// replication) pair of the sweep draws from one shared pool —
// base.Parallelism bounds the total number of concurrent simulations,
// exactly like the batch sweep — returning one StreamResult per combo,
// in combo order.
func RunSetStream(ctx context.Context, approach string, combos []Combo, base Config) ([]*StreamResult, error) {
	lim := parallel.NewLimiter(base.Parallelism)
	return RunSetStreamVia(ctx, localPoint{lim: lim}, approach, combos, base)
}

// Jobs returns the number of finished jobs over all replications.
func (r *StreamResult) Jobs() int {
	if r.Agg == nil {
		return r.summary.Jobs
	}
	return r.Agg.Jobs
}

// Malleable returns the number of malleable jobs over all replications.
func (r *StreamResult) Malleable() int {
	if r.Agg == nil {
		return r.summary.Malleable
	}
	return r.Agg.Malleable
}

// Rejected returns the number of rejected jobs over all replications.
func (r *StreamResult) Rejected() int {
	n := 0
	for _, rep := range r.Replications {
		n += rep.Rejected
	}
	return n
}

// MeanUtilization averages the per-replication utilisation, exactly as
// the batch Result.MeanUtilization does.
func (r *StreamResult) MeanUtilization() float64 {
	if len(r.Replications) == 0 {
		return 0
	}
	sum := 0.0
	for _, rep := range r.Replications {
		sum += rep.MeanUtilization
	}
	return sum / float64(len(r.Replications))
}

// TotalOps averages the malleability operations per replication,
// exactly as the batch Result.TotalOps does.
func (r *StreamResult) TotalOps() float64 {
	if len(r.Replications) == 0 {
		return 0
	}
	sum := 0.0
	for _, rep := range r.Replications {
		sum += rep.Ops
	}
	return sum / float64(len(r.Replications))
}

// MeanExecution returns the mean execution time over all jobs.
func (r *StreamResult) MeanExecution() float64 {
	if r.Agg == nil {
		return r.summary.Exec.Mean
	}
	return r.Agg.MeanExecution()
}

// MeanResponse returns the mean response time over all jobs.
func (r *StreamResult) MeanResponse() float64 {
	if r.Agg == nil {
		return r.summary.Response.Mean
	}
	return r.Agg.MeanResponse()
}

// StreamSummary is the JSON form of a finished streaming experiment:
// koalad's terminal event, its GET /v1/experiments/{id} body, and the
// cached value of the result cache.
type StreamSummary struct {
	Name      string `json:"name"`
	Runs      int    `json:"runs"`
	Jobs      int    `json:"jobs"`
	Malleable int    `json:"malleable"`
	Rejected  int    `json:"rejected"`

	MeanUtilization float64 `json:"mean_utilization"`
	OpsPerRun       float64 `json:"ops_per_run"`

	// Exec/Response summarize all jobs; AvgProcs/MaxProcs the malleable
	// subset. Moments are exact, quantiles carry the sketch's relative
	// error.
	Exec     stats.Summary `json:"exec"`
	Response stats.Summary `json:"response"`
	AvgProcs stats.Summary `json:"avg_procs"`
	MaxProcs stats.Summary `json:"max_procs"`

	Replications []Replication `json:"replications"`
}

// Summary renders the result in its wire form. For a remotely
// executed point the worker's summary is returned verbatim, so its
// EncodeSummary bytes are exactly what the worker persisted.
func (r *StreamResult) Summary() StreamSummary {
	if r.summary != nil {
		return *r.summary
	}
	return StreamSummary{
		Name:            r.Config.Name,
		Runs:            len(r.Replications),
		Jobs:            r.Jobs(),
		Malleable:       r.Agg.Malleable,
		Rejected:        r.Rejected(),
		MeanUtilization: r.MeanUtilization(),
		OpsPerRun:       r.TotalOps(),
		Exec:            r.Agg.Exec.Summary(),
		Response:        r.Agg.Response.Summary(),
		AvgProcs:        r.Agg.AvgProcs.Summary(),
		MaxProcs:        r.Agg.MaxProcs.Summary(),
		Replications:    r.Replications,
	}
}
