package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []stats.Point
}

// Figure is the data behind one figure of the paper.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render formats the figure as aligned columns: one X column followed by one
// column per series.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	fmt.Fprintf(&b, "%-12s", "x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-12.6g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " %14.6g", s.Points[i].Percent)
			} else {
				fmt.Fprintf(&b, " %14s", "")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, ",%g", s.Points[i].Percent)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig6 regenerates Figure 6: the execution times of the two applications
// versus the number of machines, straight from the runtime models.
func Fig6() Figure {
	ft := app.FTModel()
	gadget := app.GadgetModel()
	var ftPts, gPts []stats.Point
	for p := 1; p <= 46; p++ {
		ftPts = append(ftPts, stats.Point{X: float64(p), Percent: ft.Time(p)})
		gPts = append(gPts, stats.Point{X: float64(p), Percent: gadget.Time(p)})
	}
	return Figure{
		ID:     "6",
		Title:  "Execution times of the two applications vs number of machines",
		XLabel: "Number of machines",
		YLabel: "Time (s)",
		Series: []Series{{Label: "FT", Points: ftPts}, {Label: "Gadget2", Points: gPts}},
	}
}

// Table1 renders Table I (the DAS-3 node distribution).
func Table1() string { return cluster.DAS3().TableI() }

// Combo names one (policy, workload) curve of Figs. 7 and 8.
type Combo struct {
	Policy   string
	Workload func(seed uint64) workload.Spec
	Label    string
}

// PRACombos are the four curves of Fig. 7.
func PRACombos() []Combo {
	return []Combo{
		{Policy: "FPSMA", Workload: workload.Wm, Label: "FPSMA/Wm"},
		{Policy: "FPSMA", Workload: workload.Wmr, Label: "FPSMA/Wmr"},
		{Policy: "EGS", Workload: workload.Wm, Label: "EGS/Wm"},
		{Policy: "EGS", Workload: workload.Wmr, Label: "EGS/Wmr"},
	}
}

// PWACombos are the four curves of Fig. 8.
func PWACombos() []Combo {
	return []Combo{
		{Policy: "FPSMA", Workload: workload.WmPrime, Label: "FPSMA/W'm"},
		{Policy: "FPSMA", Workload: workload.WmrPrime, Label: "FPSMA/W'mr"},
		{Policy: "EGS", Workload: workload.WmPrime, Label: "EGS/W'm"},
		{Policy: "EGS", Workload: workload.WmrPrime, Label: "EGS/W'mr"},
	}
}

// Set holds the results for the four combos of one approach — the common
// input of the six sub-figures.
type Set struct {
	Approach string
	Results  map[string]*Result // keyed by combo label, insertion-ordered via Labels
	Labels   []string
}

// RunSet executes the four combos of an approach. Opts tweak the base
// config (runs, seed, grid, parallelism) for every combo.
func RunSet(approach string, combos []Combo, base Config) (*Set, error) {
	return RunSetContext(context.Background(), approach, combos, base)
}

// ComboConfigs expands an approach's combos into per-combo configs the
// way RunSet does (PWA background preset, approach/policy/workload and
// name filled in, defaults resolved). It is the shared front half of
// RunSetContext and the streaming sweep of cmd/figures -stream.
func ComboConfigs(approach string, combos []Combo, base Config) []Config {
	if base.Background == nil && !base.NoBackground && approach == "PWA" {
		// The PWA experiments ran under much heavier shared-testbed
		// conditions (see PWABackground).
		bg := PWABackground()
		base.Background = &bg
	}
	cfgs := make([]Config, len(combos))
	for i, combo := range combos {
		cfg := base
		cfg.Approach = approach
		cfg.Policy = combo.Policy
		cfg.Workload = combo.Workload(base.Seed)
		cfg.Name = fmt.Sprintf("%s/%s", approach, combo.Label)
		cfgs[i] = cfg.withDefaults()
	}
	return cfgs
}

// RunSetContext is RunSet with cancellation. Every (combo, replication)
// pair is an independent simulation, so the whole sweep flattens into one
// task space executed on a single bounded pool — base.Parallelism bounds
// the *total* number of concurrent simulations, not workers per level.
// The Labels order (and therefore every figure's series order) and each
// combo's pooled record order match the serial loops exactly.
func RunSetContext(ctx context.Context, approach string, combos []Combo, base Config) (*Set, error) {
	cfgs := ComboConfigs(approach, combos, base)

	type task struct{ combo, run int }
	var tasks []task
	runs := make([][]*RunResult, len(combos))
	for c, cfg := range cfgs {
		runs[c] = make([]*RunResult, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			tasks = append(tasks, task{combo: c, run: r})
		}
	}
	err := parallel.ForEach(ctx, len(tasks), base.Parallelism, func(_ context.Context, i int) error {
		t := tasks[i]
		cfg := cfgs[t.combo]
		r, err := RunOnce(cfg, cfg.Seed+uint64(t.run))
		if err != nil {
			return err
		}
		runs[t.combo][t.run] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	set := &Set{Approach: approach, Results: make(map[string]*Result)}
	for c, combo := range combos {
		set.Results[combo.Label] = newResult(cfgs[c], runs[c])
		set.Labels = append(set.Labels, combo.Label)
	}
	return set, nil
}

// cdfFigure builds a four-series CDF figure over a record field.
func (s *Set) cdfFigure(id, title, xlabel string, xs []float64,
	extract func(*Result) []float64) Figure {
	fig := Figure{
		ID:     id,
		Title:  title,
		XLabel: xlabel,
		YLabel: "Cumulative number of jobs (%)",
	}
	for _, label := range s.Labels {
		cdf := stats.NewCDF(extract(s.Results[label]))
		fig.Series = append(fig.Series, Series{Label: label, Points: cdf.SampleAt(xs)})
	}
	return fig
}

func gridF(lo, hi, step float64) []float64 {
	var xs []float64
	for x := lo; x <= hi+1e-9; x += step {
		xs = append(xs, x)
	}
	return xs
}

// FigSizesAvg is Fig. 7(a)/8(a): the CDF of the number of processors per
// job averaged over its execution time (malleable jobs).
func (s *Set) FigSizesAvg(id string) Figure {
	return s.cdfFigure(id, "Average number of processors per job",
		"Average number of processors per job", gridF(0, 46, 1),
		func(r *Result) []float64 { return metrics.AvgProcsOf(r.MalleableRecords()) })
}

// FigSizesMax is Fig. 7(b)/8(b): the CDF of the maximal processor count
// reached per job.
func (s *Set) FigSizesMax(id string) Figure {
	return s.cdfFigure(id, "Maximum number of processors per job",
		"Maximum number of processors per job", gridF(0, 46, 1),
		func(r *Result) []float64 { return metrics.MaxProcsOf(r.MalleableRecords()) })
}

// FigExecTimes is Fig. 7(c)/8(c): the CDF of job execution times.
func (s *Set) FigExecTimes(id string) Figure {
	return s.cdfFigure(id, "Job execution times", "Execution time (s)", gridF(0, 1200, 20),
		func(r *Result) []float64 { return metrics.ExecTimesOf(r.Pooled) })
}

// FigResponseTimes is Fig. 7(d)/8(d): the CDF of job response times.
func (s *Set) FigResponseTimes(id string) Figure {
	return s.cdfFigure(id, "Job response times", "Response time (s)", gridF(0, 2000, 20),
		func(r *Result) []float64 { return metrics.ResponseTimesOf(r.Pooled) })
}

// FigUtilization is Fig. 7(e)/8(e): total used processors over time
// (first run of each combo, sampled on a common grid).
func (s *Set) FigUtilization(id string, start, end, step float64) Figure {
	fig := Figure{
		ID:     id,
		Title:  "Utilization of the platform during the experiment",
		XLabel: "Time (s)",
		YLabel: "Total number of used processors",
	}
	for _, label := range s.Labels {
		r := s.Results[label]
		if len(r.Runs) == 0 {
			continue
		}
		fig.Series = append(fig.Series, Series{
			Label:  label,
			Points: r.Runs[0].Utilization.Sample(start, end, step),
		})
	}
	return fig
}

// FigOps is Fig. 7(f)/8(f): the cumulative number of malleability
// operations over time (first run of each combo). Under PRA only grow
// operations occur; under PWA the curve sums grows and shrinks.
func (s *Set) FigOps(id string, start, end, step float64) Figure {
	fig := Figure{
		ID:     id,
		Title:  "Activity of the malleability manager",
		XLabel: "Time (s)",
		YLabel: "Number of malleability operations",
	}
	for _, label := range s.Labels {
		r := s.Results[label]
		if len(r.Runs) == 0 {
			continue
		}
		run := r.Runs[0]
		var pts []stats.Point
		for _, x := range gridF(start, end, step) {
			pts = append(pts, stats.Point{X: x, Percent: run.GrowOps.At(x) + run.ShrinkOps.At(x)})
		}
		fig.Series = append(fig.Series, Series{Label: label, Points: pts})
	}
	return fig
}

// SummaryTable renders per-combo aggregate statistics, ordered by label.
func (s *Set) SummaryTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %10s %10s %10s %10s %8s\n",
		"combo", "jobs", "mean-exec", "mean-resp", "mean-util", "ops/run", "rejected")
	labels := append([]string(nil), s.Labels...)
	sort.Strings(labels)
	for _, label := range labels {
		r := s.Results[label]
		rejected := 0
		for _, run := range r.Runs {
			rejected += run.Rejected
		}
		fmt.Fprintf(&b, "%-14s %8d %10.1f %10.1f %10.1f %10.1f %8d\n",
			label, len(r.Pooled), r.MeanExecution(), r.MeanResponse(),
			r.MeanUtilization(), r.TotalOps(), rejected)
	}
	return b.String()
}
